package workload

// This file defines the 22 application profiles standing in for the paper's
// workload: the SPEC95 suite, airshed/stereo/radar from the CMU task
// parallel suite, and the NAS appcg kernel. The numeric parameters are
// calibrated against the per-application curve shapes the paper reports in
// Figures 7 and 10 and the prose in Sections 5.2.2, 5.2.3, 5.3.1 and 6:
//
//   - most applications' Dcache behaviour is best served by an 8-16 KB L1;
//     compress is the only integer application that improves past 16 KB;
//   - stereo's TPI keeps falling until a 48 KB L1; appcg drops sharply once
//     its two hot structures can coexist past 48 KB; swim improves steadily;
//     applu misses ~9% at 8 KB and still ~8% at 64 KB with most of those
//     misses missing the full 128 KB structure as well;
//   - compress's loads+stores are under 10% of its instruction mix, so its
//     large TPImiss gains barely move its TPI;
//   - most applications' ILP is exhausted by a 64-entry issue queue;
//     compress keeps gaining to 128 entries; radar, fpppp and appcg are
//     dependence-chain-bound and favour the fastest 16-entry clock;
//   - turb3d alternates between long (multi-million-instruction) phases
//     favouring 64 and 128 entries; vortex alternates between 16- and
//     64-entry-favouring behaviour on a regular ~15x2000-instruction period
//     in some stretches and irregularly in others.

const kb = 1024
const mb = 1024 * 1024

// Latency mixes: integer codes are ALU-dominated with some address
// arithmetic and (perfect-cache) 2-cycle loads; floating-point codes carry
// 4-cycle FP pipes and occasional long divides.
var (
	intLats = []LatComponent{{Cycles: 1, Weight: 0.72}, {Cycles: 2, Weight: 0.23}, {Cycles: 4, Weight: 0.05}}
	fpLats  = []LatComponent{{Cycles: 1, Weight: 0.30}, {Cycles: 2, Weight: 0.25}, {Cycles: 4, Weight: 0.40}, {Cycles: 12, Weight: 0.05}}
)

// srcTypical: most instructions have 1-2 register sources.
var srcTypical = [3]float64{0.15, 0.45, 0.40}

func stable(src [3]float64, dists []GeomComponent, lats []LatComponent) ILPProfile {
	return ILPProfile{Base: ILPParams{SrcWeights: src, Dists: dists, Lats: lats}}
}

func d2(m1, w1, m2, w2 float64) []GeomComponent {
	return []GeomComponent{{Mean: m1, Weight: w1}, {Mean: m2, Weight: w2}}
}

// bursty builds the micro-phased stream most applications use: short
// dependence-chain stretches alternating with parallel bursts every `period`
// dynamic instructions. Real programs interleave loop-carried recurrences
// with independent work at exactly this granularity, which is what makes a
// 16-entry window starve (it cannot reach past a stalled chain into the next
// burst) while a 64-entry window runs near the stream's ILP limit — the
// shape of the paper's Figure 10 curves.
func bursty(chain, par []GeomComponent, lats []LatComponent, period int64) ILPProfile {
	return ILPProfile{
		Base: ILPParams{SrcWeights: [3]float64{0, 0.45, 0.55}, Dists: chain, Lats: lats},
		Alt:  &ILPParams{SrcWeights: [3]float64{0.30, 0.45, 0.25}, Dists: par, Lats: lats},
		Kind: PhaseRegular, PeriodInstrs: period,
	}
}

var registry = []Benchmark{
	// ---------------- SPECint95 ----------------
	{
		Name: "go", Suite: SPECint95,
		// No Mem profile: the paper could not instrument go with Atom,
		// so it appears only in the instruction-queue experiment.
		ILP: bursty(d2(1.4, 0.88, 4, 0.12), d2(10, 0.65, 22, 0.35), intLats, 65),
	},
	{
		Name: "m88ksim", Suite: SPECint95,
		Mem: &MemProfile{
			RefsPerInstr: 0.30, WriteFrac: 0.30,
			Regions: []Region{
				{Name: "hot", Kind: RandomRegion, Bytes: 6 * kb, Weight: 0.982, Run: 8},
				{Name: "mid", Kind: RandomRegion, Bytes: 96 * kb, Weight: 0.015, Run: 4},
				{Name: "big", Kind: RandomRegion, Bytes: 512 * kb, Weight: 0.003, Run: 2},
			},
		},
		ILP: bursty(d2(1.5, 0.85, 5, 0.15), d2(12, 0.6, 28, 0.4), intLats, 55),
	},
	{
		Name: "gcc", Suite: SPECint95,
		Mem: &MemProfile{
			RefsPerInstr: 0.30, WriteFrac: 0.32,
			Regions: []Region{
				{Name: "hot", Kind: RandomRegion, Bytes: 7 * kb, Weight: 0.963, Run: 8},
				{Name: "mid", Kind: RandomRegion, Bytes: 160 * kb, Weight: 0.032, Run: 3},
				{Name: "big", Kind: RandomRegion, Bytes: 1 * mb, Weight: 0.005, Run: 2},
			},
		},
		ILP: bursty(d2(1.4, 0.87, 4, 0.13), d2(10, 0.6, 24, 0.4), intLats, 60),
	},
	{
		Name: "compress", Suite: SPECint95,
		Mem: &MemProfile{
			// Loads and stores are under 10% of compress's mix
			// (paper Section 5.2.3), so cache gains barely move TPI.
			RefsPerInstr: 0.09, WriteFrac: 0.35,
			Regions: []Region{
				{Name: "hot", Kind: RandomRegion, Bytes: 4 * kb, Weight: 0.77, Run: 8},
				{Name: "dict", Kind: RandomRegion, Bytes: 30 * kb, Weight: 0.22, Run: 2},
				{Name: "big", Kind: RandomRegion, Bytes: 256 * kb, Weight: 0.004, Run: 1},
			},
		},
		ILP: bursty(d2(1.3, 0.92, 4, 0.08), d2(12, 0.55, 28, 0.45), intLats, 45),
	},
	{
		Name: "li", Suite: SPECint95,
		Mem: &MemProfile{
			RefsPerInstr: 0.30, WriteFrac: 0.33,
			Regions: []Region{
				{Name: "hot", Kind: RandomRegion, Bytes: 8 * kb, Weight: 0.977, Run: 8},
				{Name: "mid", Kind: RandomRegion, Bytes: 64 * kb, Weight: 0.021, Run: 4},
				{Name: "big", Kind: RandomRegion, Bytes: 256 * kb, Weight: 0.003, Run: 2},
			},
		},
		ILP: bursty(d2(1.5, 0.85, 5, 0.15), d2(11, 0.6, 26, 0.4), intLats, 55),
	},
	{
		Name: "ijpeg", Suite: SPECint95,
		Mem: &MemProfile{
			RefsPerInstr: 0.22, WriteFrac: 0.28,
			Regions: []Region{
				{Name: "hot", Kind: RandomRegion, Bytes: 8 * kb, Weight: 0.973, Run: 12},
				{Name: "image", Kind: StreamRegion, Bytes: 2 * mb, Weight: 0.005, StrideBytes: 16},
				{Name: "mid", Kind: RandomRegion, Bytes: 128 * kb, Weight: 0.022, Run: 6},
			},
		},
		ILP: bursty(d2(1.8, 0.85, 5, 0.15), d2(12, 0.6, 28, 0.4), intLats, 50),
	},
	{
		Name: "perl", Suite: SPECint95,
		Mem: &MemProfile{
			RefsPerInstr: 0.33, WriteFrac: 0.32,
			Regions: []Region{
				{Name: "hot", Kind: RandomRegion, Bytes: 8 * kb, Weight: 0.971, Run: 8},
				{Name: "mid", Kind: RandomRegion, Bytes: 128 * kb, Weight: 0.024, Run: 3},
				{Name: "big", Kind: RandomRegion, Bytes: 512 * kb, Weight: 0.005, Run: 2},
			},
		},
		ILP: bursty(d2(1.4, 0.87, 4, 0.13), d2(10, 0.6, 24, 0.4), intLats, 65),
	},
	{
		Name: "vortex", Suite: SPECint95,
		Mem: &MemProfile{
			RefsPerInstr: 0.30, WriteFrac: 0.35,
			Regions: []Region{
				{Name: "hot", Kind: RandomRegion, Bytes: 8 * kb, Weight: 0.947, Run: 6},
				{Name: "db", Kind: RandomRegion, Bytes: 200 * kb, Weight: 0.043, Run: 3},
				{Name: "big", Kind: RandomRegion, Bytes: 1 * mb, Weight: 0.011, Run: 2},
			},
		},
		// Section 6 / Figure 13: vortex alternates between 16- and
		// 64-entry-favouring behaviour — regularly (period ~15
		// intervals of 2000 instructions) in some stretches,
		// irregularly in others.
		ILP: ILPProfile{
			Base: ILPParams{SrcWeights: srcTypical, Dists: d2(2, 0.70, 12, 0.30), Lats: intLats},
			Alt:  &ILPParams{SrcWeights: [3]float64{0.035, 0.485, 0.48}, Dists: d2(4, 0.80, 12, 0.20), Lats: intLats},
			Kind: PhaseComposite, PeriodInstrs: 30000, SuperPeriodInstrs: 1200000,
		},
	},

	// ---------------- CMU suite ----------------
	{
		Name: "airshed", Suite: CMU, FloatingPoint: true,
		Mem: &MemProfile{
			RefsPerInstr: 0.33, WriteFrac: 0.30,
			Regions: []Region{
				{Name: "hot", Kind: RandomRegion, Bytes: 8 * kb, Weight: 0.72, Run: 5},
				{Name: "plume", Kind: LoopRegion, Bytes: 20 * kb, Weight: 0.15, StrideBytes: 8},
				{Name: "mid", Kind: RandomRegion, Bytes: 64 * kb, Weight: 0.06, Run: 4},
				{Name: "grid", Kind: StreamRegion, Bytes: 4 * mb, Weight: 0.04, StrideBytes: 8},
			},
		},
		ILP: bursty(d2(1.5, 0.85, 5, 0.15), d2(10, 0.6, 24, 0.4), fpLats, 50),
	},
	{
		Name: "stereo", Suite: CMU, FloatingPoint: true,
		Mem: &MemProfile{
			// Stereo's disparity windows want a ~44 KB L1; its TPI
			// curve does not flatten until 48 KB (Section 5.2.2).
			RefsPerInstr: 0.44, WriteFrac: 0.25,
			Regions: []Region{
				{Name: "window", Kind: LoopRegion, Bytes: 36 * kb, Weight: 0.70, StrideBytes: 8},
				{Name: "hot", Kind: RandomRegion, Bytes: 4 * kb, Weight: 0.28, Run: 8},
				{Name: "frame", Kind: RandomRegion, Bytes: 384 * kb, Weight: 0.02, Run: 2},
			},
		},
		ILP: bursty(d2(1.5, 0.85, 5, 0.15), d2(11, 0.6, 26, 0.4), fpLats, 50),
	},
	{
		Name: "radar", Suite: CMU, FloatingPoint: true,
		Mem: &MemProfile{
			RefsPerInstr: 0.30, WriteFrac: 0.28,
			Regions: []Region{
				{Name: "hot", Kind: RandomRegion, Bytes: 8 * kb, Weight: 0.936, Run: 6},
				{Name: "mid", Kind: RandomRegion, Bytes: 64 * kb, Weight: 0.057, Run: 4},
				{Name: "pulse", Kind: StreamRegion, Bytes: 1 * mb, Weight: 0.007, StrideBytes: 16},
			},
		},
		// FFT butterflies: short recurrences, chain-bound — favours the
		// fast 16-entry queue (Figure 10b).
		ILP: stable([3]float64{0.11, 0.40, 0.49}, d2(3, 0.70, 12, 0.30),
			[]LatComponent{{Cycles: 1, Weight: 0.30}, {Cycles: 2, Weight: 0.40}, {Cycles: 4, Weight: 0.30}}),
	},

	// ---------------- NAS ----------------
	{
		Name: "appcg", Suite: NAS, FloatingPoint: true,
		Mem: &MemProfile{
			// Two frequently accessed structures that only coexist
			// in caches larger than 48 KB (Section 5.2.2's "sharp
			// drop once L1 cache size is increased beyond 48KB").
			RefsPerInstr: 0.30, WriteFrac: 0.25,
			Regions: []Region{
				{Name: "matrix", Kind: LoopRegion, Bytes: 30 * kb, Weight: 0.30, StrideBytes: 8},
				{Name: "vector", Kind: RandomRegion, Bytes: 22 * kb, Weight: 0.38, Run: 4},
				{Name: "hot", Kind: RandomRegion, Bytes: 4 * kb, Weight: 0.31, Run: 8},
				{Name: "big", Kind: RandomRegion, Bytes: 512 * kb, Weight: 0.01, Run: 2},
			},
		},
		// Sparse CG: long dependence recurrences through FP adds —
		// dependence-bound at any window size, so the 16-entry clock
		// wins by nearly the full cycle-time ratio (Figure 11's 28%).
		ILP: stable([3]float64{0.008, 0.45, 0.542}, d2(2, 0.85, 6, 0.15),
			[]LatComponent{{Cycles: 1, Weight: 0.32}, {Cycles: 2, Weight: 0.38}, {Cycles: 4, Weight: 0.30}}),
	},

	// ---------------- SPECfp95 ----------------
	{
		Name: "tomcatv", Suite: SPECfp95, FloatingPoint: true,
		Mem: &MemProfile{
			RefsPerInstr: 0.35, WriteFrac: 0.30,
			Regions: []Region{
				{Name: "hot", Kind: RandomRegion, Bytes: 8 * kb, Weight: 0.956, Run: 8},
				{Name: "mesh", Kind: StreamRegion, Bytes: 4 * mb, Weight: 0.020, StrideBytes: 8},
				{Name: "mid", Kind: RandomRegion, Bytes: 80 * kb, Weight: 0.023, Run: 4},
			},
		},
		ILP: bursty(d2(1.6, 0.85, 5, 0.15), d2(12, 0.6, 28, 0.4), fpLats, 50),
	},
	{
		Name: "swim", Suite: SPECfp95, FloatingPoint: true,
		Mem: &MemProfile{
			// Shallow-water stencils: a ~52 KB set of hot planes
			// rewards L1 growth all the way to 56-64 KB.
			RefsPerInstr: 0.36, WriteFrac: 0.35,
			Regions: []Region{
				{Name: "planes", Kind: RandomRegion, Bytes: 48 * kb, Weight: 0.190, Run: 4},
				{Name: "hot", Kind: RandomRegion, Bytes: 4 * kb, Weight: 0.799, Run: 8},
				{Name: "ocean", Kind: StreamRegion, Bytes: 8 * mb, Weight: 0.011, StrideBytes: 8},
			},
		},
		ILP: bursty(d2(1.6, 0.85, 5, 0.15), d2(12, 0.6, 30, 0.4), fpLats, 55),
	},
	{
		Name: "su2cor", Suite: SPECfp95, FloatingPoint: true,
		Mem: &MemProfile{
			RefsPerInstr: 0.34, WriteFrac: 0.30,
			Regions: []Region{
				{Name: "hot", Kind: RandomRegion, Bytes: 8 * kb, Weight: 0.924, Run: 6},
				{Name: "mid", Kind: RandomRegion, Bytes: 72 * kb, Weight: 0.067, Run: 3},
				{Name: "lattice", Kind: StreamRegion, Bytes: 4 * mb, Weight: 0.009, StrideBytes: 16},
			},
		},
		ILP: bursty(d2(1.5, 0.85, 5, 0.15), d2(11, 0.6, 26, 0.4), fpLats, 50),
	},
	{
		Name: "hydro2d", Suite: SPECfp95, FloatingPoint: true,
		Mem: &MemProfile{
			RefsPerInstr: 0.34, WriteFrac: 0.32,
			Regions: []Region{
				{Name: "hot", Kind: RandomRegion, Bytes: 8 * kb, Weight: 0.916, Run: 8},
				{Name: "mid", Kind: RandomRegion, Bytes: 64 * kb, Weight: 0.074, Run: 4},
				{Name: "grid", Kind: StreamRegion, Bytes: 2 * mb, Weight: 0.010, StrideBytes: 8},
			},
		},
		ILP: bursty(d2(1.5, 0.85, 5, 0.15), d2(10, 0.6, 24, 0.4), fpLats, 50),
	},
	{
		Name: "mgrid", Suite: SPECfp95, FloatingPoint: true,
		Mem: &MemProfile{
			RefsPerInstr: 0.36, WriteFrac: 0.28,
			Regions: []Region{
				{Name: "hot", Kind: RandomRegion, Bytes: 8 * kb, Weight: 0.909, Run: 10},
				{Name: "mid", Kind: RandomRegion, Bytes: 56 * kb, Weight: 0.082, Run: 6},
				{Name: "grid", Kind: StreamRegion, Bytes: 8 * mb, Weight: 0.009, StrideBytes: 8},
			},
		},
		ILP: bursty(d2(1.6, 0.85, 5, 0.15), d2(11, 0.6, 26, 0.4), fpLats, 50),
	},
	{
		Name: "applu", Suite: SPECfp95, FloatingPoint: true,
		Mem: &MemProfile{
			// The paper: 9% L1 miss ratio at 8 KB dropping only to 8%
			// at 64 KB, with most misses missing the 128 KB structure
			// as well — the 700 KB working set simply does not fit.
			RefsPerInstr: 0.33, WriteFrac: 0.30,
			Regions: []Region{
				{Name: "blocks", Kind: RandomRegion, Bytes: 700 * kb, Weight: 0.037, Run: 2},
				{Name: "hot", Kind: RandomRegion, Bytes: 6 * kb, Weight: 0.953, Run: 10},
				{Name: "mid", Kind: RandomRegion, Bytes: 100 * kb, Weight: 0.009, Run: 4},
			},
		},
		ILP: bursty(d2(1.5, 0.85, 5, 0.15), d2(10, 0.6, 24, 0.4), fpLats, 55),
	},
	{
		Name: "turb3d", Suite: SPECfp95, FloatingPoint: true,
		Mem: &MemProfile{
			RefsPerInstr: 0.32, WriteFrac: 0.30,
			Regions: []Region{
				{Name: "hot", Kind: RandomRegion, Bytes: 8 * kb, Weight: 0.960, Run: 8},
				{Name: "mid", Kind: RandomRegion, Bytes: 120 * kb, Weight: 0.032, Run: 4},
				{Name: "cube", Kind: RandomRegion, Bytes: 512 * kb, Weight: 0.008, Run: 2},
			},
		},
		// Figure 12: long multi-million-instruction phases; in one kind
		// the 64-entry queue wins by ~10%, in the other the 128-entry
		// window exposes far-apart ILP and wins by ~20%.
		ILP: ILPProfile{
			Base: ILPParams{SrcWeights: srcTypical, Dists: d2(4, 0.60, 22, 0.40), Lats: fpLats},
			Alt: &ILPParams{SrcWeights: [3]float64{0.05, 0.42, 0.53}, Dists: d2(1.3, 0.93, 4, 0.07),
				Lats: []LatComponent{{Cycles: 1, Weight: 0.45}, {Cycles: 2, Weight: 0.40}, {Cycles: 4, Weight: 0.15}}},
			Kind: PhaseLongBlocks, PeriodInstrs: 2000000,
		},
	},
	{
		Name: "apsi", Suite: SPECfp95, FloatingPoint: true,
		Mem: &MemProfile{
			RefsPerInstr: 0.34, WriteFrac: 0.30,
			Regions: []Region{
				{Name: "hot", Kind: RandomRegion, Bytes: 8 * kb, Weight: 0.940, Run: 8},
				{Name: "mid", Kind: RandomRegion, Bytes: 90 * kb, Weight: 0.055, Run: 4},
				{Name: "air", Kind: StreamRegion, Bytes: 2 * mb, Weight: 0.005, StrideBytes: 16},
			},
		},
		ILP: bursty(d2(1.5, 0.85, 5, 0.15), d2(11, 0.6, 26, 0.4), fpLats, 55),
	},
	{
		Name: "fpppp", Suite: SPECfp95, FloatingPoint: true,
		Mem: &MemProfile{
			// Tiny working set: the fastest clock always wins the
			// cache tradeoff for fpppp.
			RefsPerInstr: 0.42, WriteFrac: 0.25,
			Regions: []Region{
				{Name: "hot", Kind: RandomRegion, Bytes: 6 * kb, Weight: 0.990, Run: 12},
				{Name: "mid", Kind: RandomRegion, Bytes: 48 * kb, Weight: 0.010, Run: 6},
			},
		},
		// Enormous basic blocks but tight FP dependence chains: ILP is
		// exhausted by 16 entries (Figure 10b / 11's 21% gain).
		ILP: stable([3]float64{0.030, 0.45, 0.520}, d2(3, 0.75, 10, 0.25),
			[]LatComponent{{Cycles: 1, Weight: 0.45}, {Cycles: 2, Weight: 0.35}, {Cycles: 4, Weight: 0.20}}),
	},
	{
		Name: "wave5", Suite: SPECfp95, FloatingPoint: true,
		Mem: &MemProfile{
			RefsPerInstr: 0.34, WriteFrac: 0.30,
			Regions: []Region{
				{Name: "field", Kind: LoopRegion, Bytes: 30 * kb, Weight: 0.16, StrideBytes: 8},
				{Name: "hot2", Kind: RandomRegion, Bytes: 4 * kb, Weight: 0.81, Run: 8},
				{Name: "particles", Kind: StreamRegion, Bytes: 4 * mb, Weight: 0.03, StrideBytes: 16},
			},
		},
		ILP: bursty(d2(1.6, 0.85, 5, 0.15), d2(11, 0.6, 26, 0.4), fpLats, 50),
	},
}

// zooRegistry holds the policy-zoo switching-stress streams: synthetic
// phase-modulated workloads built to make adaptation hard, with a sharper
// best-configuration contrast and faster phase turnover than anything in
// the paper's suite. They are queue-only (Mem nil, like go) and are kept
// OUT of the main registry so All()/QueueApps() keep reproducing the
// paper's 22-application figures; ZooApps()/ByName expose them.
var zooRegistry = []Benchmark{
	{
		// flutter alternates on a fixed cadence (~50 intervals of 2000
		// instructions per phase) between a dependence-chain-bound stream
		// whose ILP a 16-entry queue already captures — the fastest clock
		// wins — and a distant-parallelism stream only a 128-entry window
		// can exploit. Every flip moves the best configuration across the
		// whole menu; phases are long enough that a policy re-probing on
		// its explore period CAN track them, so reaction lag and switch
		// charging are both on display.
		Name: "flutter", Suite: Synthetic,
		ILP: ILPProfile{
			Base: ILPParams{SrcWeights: [3]float64{0.10, 0.55, 0.35}, Dists: d2(1.3, 0.95, 3, 0.05), Lats: intLats},
			Alt:  &ILPParams{SrcWeights: [3]float64{0.30, 0.45, 0.25}, Dists: d2(24, 0.50, 48, 0.50), Lats: intLats},
			Kind: PhaseRegular, PeriodInstrs: 100_000,
		},
	},
	{
		// squall is flutter without the metronome: the same two extremes,
		// but phase runs are geometric with mean ~50 intervals — long calm
		// stretches punctuated by short squalls. A trigger-happy policy
		// thrashes on the short runs; a sluggish one forfeits the long
		// ones.
		Name: "squall", Suite: Synthetic,
		ILP: ILPProfile{
			Base: ILPParams{SrcWeights: [3]float64{0.10, 0.55, 0.35}, Dists: d2(1.3, 0.95, 3, 0.05), Lats: intLats},
			Alt:  &ILPParams{SrcWeights: [3]float64{0.30, 0.45, 0.25}, Dists: d2(24, 0.50, 48, 0.50), Lats: intLats},
			Kind: PhaseIrregular, PeriodInstrs: 100_000,
		},
	},
}

func init() {
	for _, b := range registry {
		if err := b.Validate(); err != nil {
			panic(err)
		}
	}
	for _, b := range zooRegistry {
		if err := b.Validate(); err != nil {
			panic(err)
		}
	}
}
