package workload

import (
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 22 {
		t.Fatalf("registry has %d benchmarks, want 22", len(all))
	}
	if len(CacheApps()) != 21 {
		t.Errorf("cache apps %d, want 21 (all but go)", len(CacheApps()))
	}
	if len(QueueApps()) != 22 {
		t.Errorf("queue apps %d, want 22", len(QueueApps()))
	}
	for _, b := range all {
		if err := b.Validate(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
	}
}

func TestPaperWorkloadMembership(t *testing.T) {
	wantInt := []string{"go", "m88ksim", "gcc", "compress", "li", "ijpeg", "perl", "vortex"}
	wantCMU := []string{"airshed", "stereo", "radar"}
	wantFP := []string{"tomcatv", "swim", "su2cor", "hydro2d", "mgrid", "applu", "turb3d", "apsi", "fpppp", "wave5"}
	for _, n := range append(append(append([]string{}, wantInt...), wantCMU...), wantFP...) {
		if _, err := ByName(n); err != nil {
			t.Errorf("missing benchmark %s", n)
		}
	}
	if _, err := ByName("appcg"); err != nil {
		t.Error("missing NAS appcg")
	}
	for _, n := range wantInt {
		if b := MustByName(n); b.FloatingPoint {
			t.Errorf("%s marked floating point", n)
		}
	}
	for _, n := range wantFP {
		if b := MustByName(n); !b.FloatingPoint {
			t.Errorf("%s not marked floating point", n)
		}
	}
}

func TestGoHasNoMemProfile(t *testing.T) {
	// The paper could not instrument go with Atom; it must stay out of
	// the cache experiment.
	if MustByName("go").Mem != nil {
		t.Error("go should have no memory profile")
	}
	for _, b := range CacheApps() {
		if b.Name == "go" {
			t.Error("go appeared in CacheApps")
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nonesuch"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestCompressHasLowMemMix(t *testing.T) {
	// Paper Section 5.2.3: compress's loads and stores are under 10% of
	// its instruction mix.
	if rpi := MustByName("compress").Mem.RefsPerInstr; rpi >= 0.10 {
		t.Errorf("compress refs/instr %v, want < 0.10", rpi)
	}
}

func TestPhasedApplications(t *testing.T) {
	turb := MustByName("turb3d")
	if turb.ILP.Kind != PhaseLongBlocks || turb.ILP.Alt == nil {
		t.Error("turb3d must have long-block phases (Figure 12)")
	}
	vort := MustByName("vortex")
	if vort.ILP.Kind != PhaseComposite || vort.ILP.Alt == nil {
		t.Error("vortex must have composite phases (Figure 13)")
	}
	if vort.ILP.PeriodInstrs <= 0 || vort.ILP.SuperPeriodInstrs <= vort.ILP.PeriodInstrs {
		t.Error("vortex super period must exceed its alternation period")
	}
}

func TestMemProfileValidation(t *testing.T) {
	bad := MemProfile{RefsPerInstr: 0.3, Regions: []Region{{Name: "x", Kind: RandomRegion, Bytes: 1024, Weight: 1, Run: 0}}}
	if err := bad.Validate(); err == nil {
		t.Error("random region with zero run accepted")
	}
	bad = MemProfile{RefsPerInstr: 0.3, Regions: []Region{{Name: "x", Kind: StreamRegion, Bytes: 1024, Weight: 1}}}
	if err := bad.Validate(); err == nil {
		t.Error("stream region with zero stride accepted")
	}
	bad = MemProfile{RefsPerInstr: 1.5, Regions: []Region{{Name: "x", Kind: RandomRegion, Bytes: 1024, Weight: 1, Run: 1}}}
	if err := bad.Validate(); err == nil {
		t.Error("refs/instr > 1 accepted")
	}
	bad = MemProfile{RefsPerInstr: 0.3}
	if err := bad.Validate(); err == nil {
		t.Error("empty region list accepted")
	}
}

func TestILPParamsValidation(t *testing.T) {
	good := ILPParams{
		SrcWeights: [3]float64{0.2, 0.4, 0.4},
		Dists:      []GeomComponent{{Mean: 3, Weight: 1}},
		Lats:       []LatComponent{{Cycles: 1, Weight: 1}},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := good
	bad.Dists = []GeomComponent{{Mean: 0.5, Weight: 1}}
	if err := bad.Validate(); err == nil {
		t.Error("distance mean < 1 accepted")
	}
	bad = good
	bad.Lats = nil
	if err := bad.Validate(); err == nil {
		t.Error("empty latency mixture accepted")
	}
	bad = good
	bad.SrcWeights = [3]float64{0, 0, 0}
	if err := bad.Validate(); err == nil {
		t.Error("zero source weights accepted")
	}
}

func TestSortedNames(t *testing.T) {
	names := SortedNames()
	if len(names) != 22 {
		t.Fatalf("got %d names", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %q >= %q", names[i-1], names[i])
		}
	}
}
