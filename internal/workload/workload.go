// Package workload provides the synthetic application models that stand in
// for the paper's benchmark suite (SPEC95, the CMU task-parallel suite's
// airshed/stereo/radar, and the NAS appcg kernel).
//
// The paper drives its cache experiment with Atom-captured address traces
// and its instruction-queue experiment with SimpleScalar runs of real
// binaries; neither the binaries, their inputs, nor an Alpha tracing
// environment is available here, so each application is replaced by a
// *profile*: a compact statistical model of (a) its data-reference locality
// (a mixture of working-set regions with spatial-run and streaming
// behaviour) and (b) its instruction-level parallelism (dependence-distance
// and operation-latency distributions, with phase modulation for the
// applications whose intra-run diversity Section 6 studies). The profiles
// are calibrated so the per-application curves of Figures 7 and 10 have the
// shapes the paper reports; see DESIGN.md for the substitution rationale.
//
// Everything is deterministic: generators draw from capsim/internal/rng
// seeded by (benchmark name, purpose).
package workload

import (
	"fmt"
	"sort"
)

// Suite identifies the benchmark suite an application belongs to.
type Suite int

// Benchmark suites used in the paper.
const (
	SPECint95 Suite = iota
	SPECfp95
	CMU
	NAS
	// Synthetic marks the switching-stress streams of the policy zoo,
	// which live outside the paper's 22-application registry.
	Synthetic
)

func (s Suite) String() string {
	switch s {
	case SPECint95:
		return "SPECint95"
	case SPECfp95:
		return "SPECfp95"
	case CMU:
		return "CMU"
	case NAS:
		return "NAS"
	case Synthetic:
		return "synthetic"
	default:
		return fmt.Sprintf("Suite(%d)", int(s))
	}
}

// RegionKind describes the access pattern within a memory region.
type RegionKind int

const (
	// RandomRegion: accesses land on uniformly random blocks of the
	// region, each visited with a short spatial run (Run consecutive
	// words), modelling hashed/indexed structures.
	RandomRegion RegionKind = iota
	// StreamRegion: a sequential walk through the region with the given
	// stride, wrapping at the end — array sweeps much larger than any
	// cache level.
	StreamRegion
	// LoopRegion: like StreamRegion, but the region is modest-sized and
	// re-scanned repeatedly. Under LRU this produces the classic cliff:
	// while the cache is smaller than the loop every block is evicted
	// before its reuse (miss per new block), and once the cache reaches
	// the loop size misses vanish entirely. This is the behaviour behind
	// the paper's stereo and appcg curves, whose TPI stays high until the
	// L1 reaches 48 KB and then drops sharply.
	LoopRegion
)

// Region is one component of an application's data working set.
type Region struct {
	// Name is a short label for diagnostics ("heap", "dict", "grid").
	Name string
	// Kind selects the access pattern.
	Kind RegionKind
	// Bytes is the region size.
	Bytes int64
	// Weight is the fraction of references directed at this region
	// (weights are normalized across regions).
	Weight float64
	// Run is the spatial-run length for RandomRegion: the number of
	// consecutive 4-byte words touched per visit. Longer runs mean more
	// spatial locality (fewer misses per reference). Ignored for streams.
	Run int
	// StrideBytes is the streaming stride for StreamRegion.
	StrideBytes int64
}

// MemProfile models an application's data-reference behaviour.
type MemProfile struct {
	// RefsPerInstr is the fraction of instructions that are loads or
	// stores (the paper notes e.g. that compress's loads and stores are
	// under 10% of its mix).
	RefsPerInstr float64
	// WriteFrac is the fraction of references that are stores.
	WriteFrac float64
	// Regions is the working-set mixture.
	Regions []Region
}

// Validate reports whether the profile is usable.
func (m MemProfile) Validate() error {
	if m.RefsPerInstr <= 0 || m.RefsPerInstr > 1 {
		return fmt.Errorf("workload: refs/instr %v outside (0,1]", m.RefsPerInstr)
	}
	if m.WriteFrac < 0 || m.WriteFrac > 1 {
		return fmt.Errorf("workload: write fraction %v outside [0,1]", m.WriteFrac)
	}
	if len(m.Regions) == 0 {
		return fmt.Errorf("workload: no regions")
	}
	var total float64
	for i, r := range m.Regions {
		if r.Bytes <= 0 {
			return fmt.Errorf("workload: region %d (%s) has size %d", i, r.Name, r.Bytes)
		}
		if r.Weight <= 0 {
			return fmt.Errorf("workload: region %d (%s) has weight %v", i, r.Name, r.Weight)
		}
		if (r.Kind == StreamRegion || r.Kind == LoopRegion) && r.StrideBytes <= 0 {
			return fmt.Errorf("workload: stream region %d (%s) has stride %d", i, r.Name, r.StrideBytes)
		}
		if r.Kind == RandomRegion && r.Run <= 0 {
			return fmt.Errorf("workload: random region %d (%s) has run %d", i, r.Name, r.Run)
		}
		total += r.Weight
	}
	if total <= 0 {
		return fmt.Errorf("workload: region weights sum to %v", total)
	}
	return nil
}

// GeomComponent is one component of a dependence-distance mixture: distances
// are 1 + Geometric with the given mean.
type GeomComponent struct {
	Mean   float64
	Weight float64
}

// LatComponent is one component of the operation-latency mixture.
type LatComponent struct {
	Cycles int
	Weight float64
}

// ILPParams describes the instruction stream's parallelism structure within
// one phase.
type ILPParams struct {
	// SrcWeights are the probabilities of an instruction having 0, 1 or 2
	// register sources.
	SrcWeights [3]float64
	// Dists is the dependence-distance mixture (distance from consumer
	// back to producer, in dynamic instructions).
	Dists []GeomComponent
	// Lats is the operation-latency mixture in cycles.
	Lats []LatComponent
}

// Validate reports whether the parameters are usable.
func (p ILPParams) Validate() error {
	var s float64
	for _, w := range p.SrcWeights {
		if w < 0 {
			return fmt.Errorf("workload: negative source weight %v", w)
		}
		s += w
	}
	if s <= 0 {
		return fmt.Errorf("workload: source weights sum to %v", s)
	}
	if len(p.Dists) == 0 {
		return fmt.Errorf("workload: no distance components")
	}
	for i, d := range p.Dists {
		if d.Mean < 1 || d.Weight <= 0 {
			return fmt.Errorf("workload: distance component %d invalid (mean %v weight %v)", i, d.Mean, d.Weight)
		}
	}
	if len(p.Lats) == 0 {
		return fmt.Errorf("workload: no latency components")
	}
	for i, l := range p.Lats {
		if l.Cycles < 1 || l.Weight <= 0 {
			return fmt.Errorf("workload: latency component %d invalid (%d cycles weight %v)", i, l.Cycles, l.Weight)
		}
	}
	return nil
}

// PhaseKind selects how an application's ILP parameters vary over time —
// the intra-application diversity Section 6 of the paper studies.
type PhaseKind int

const (
	// PhaseStable: one parameter set for the whole run.
	PhaseStable PhaseKind = iota
	// PhaseLongBlocks: alternate Base and Alt in long blocks of
	// PeriodInstrs (turb3d's behaviour in Figure 12: long stretches where
	// one configuration clearly wins).
	PhaseLongBlocks
	// PhaseRegular: alternate Base and Alt with a short regular period
	// (vortex's Figure 13(a): the best configuration flips roughly every
	// 15 intervals of 2000 instructions).
	PhaseRegular
	// PhaseIrregular: switch between Base and Alt at random with
	// geometrically distributed run lengths (vortex's Figure 13(b):
	// frequent, near-random variation with equal long-run means).
	PhaseIrregular
	// PhaseComposite: long super-blocks that alternate between
	// PhaseRegular behaviour and PhaseIrregular behaviour — the full
	// vortex picture (regular stretches and irregular stretches in one
	// run).
	PhaseComposite
)

// ILPProfile models an application's instruction stream.
type ILPProfile struct {
	Base ILPParams
	// Alt is the second parameter set for phased applications; nil for
	// PhaseStable.
	Alt *ILPParams
	// Kind selects the phase schedule.
	Kind PhaseKind
	// PeriodInstrs is the phase block length (PhaseLongBlocks,
	// PhaseRegular) or mean run length (PhaseIrregular), in instructions.
	PeriodInstrs int64
	// SuperPeriodInstrs is the super-block length for PhaseComposite.
	SuperPeriodInstrs int64
}

// Validate reports whether the profile is usable.
func (p ILPProfile) Validate() error {
	if err := p.Base.Validate(); err != nil {
		return err
	}
	if p.Kind != PhaseStable {
		if p.Alt == nil {
			return fmt.Errorf("workload: phase kind %d requires Alt params", p.Kind)
		}
		if err := p.Alt.Validate(); err != nil {
			return err
		}
		if p.PeriodInstrs <= 0 {
			return fmt.Errorf("workload: phase kind %d requires positive period", p.Kind)
		}
		if p.Kind == PhaseComposite && p.SuperPeriodInstrs <= 0 {
			return fmt.Errorf("workload: composite phases require a super period")
		}
	}
	return nil
}

// Benchmark is one application model.
type Benchmark struct {
	Name  string
	Suite Suite
	// FloatingPoint distinguishes the paper's integer and floating-point
	// figure panels ((a) vs (b) in Figures 7 and 10).
	FloatingPoint bool
	// Mem is the data-reference model; nil only for go, which the paper
	// could not instrument with Atom and therefore appears only in the
	// instruction-queue experiment.
	Mem *MemProfile
	// ILP is the instruction-stream model.
	ILP ILPProfile
}

// Validate reports whether the benchmark definition is consistent.
func (b Benchmark) Validate() error {
	if b.Name == "" {
		return fmt.Errorf("workload: benchmark with empty name")
	}
	if b.Mem != nil {
		if err := b.Mem.Validate(); err != nil {
			return fmt.Errorf("%s: %w", b.Name, err)
		}
	}
	if err := b.ILP.Validate(); err != nil {
		return fmt.Errorf("%s: %w", b.Name, err)
	}
	return nil
}

// All returns every benchmark in the paper's order (integer, then floating
// point within each figure panel: SPECint, CMU+NAS+SPECfp).
func All() []Benchmark {
	out := make([]Benchmark, len(registry))
	copy(out, registry)
	return out
}

// CacheApps returns the 21 applications of the cache experiment (everything
// except go, which the paper could not instrument).
func CacheApps() []Benchmark {
	var out []Benchmark
	for _, b := range registry {
		if b.Mem != nil {
			out = append(out, b)
		}
	}
	return out
}

// QueueApps returns the 22 applications of the instruction-queue experiment.
func QueueApps() []Benchmark { return All() }

// ZooApps returns the synthetic switching-stress streams of the policy
// zoo. They are deliberately NOT part of All()/QueueApps(): the paper's
// figures iterate the 22-application registry, and the zoo profiles exist
// only to stress adaptation policies (the zoo experiment).
func ZooApps() []Benchmark {
	out := make([]Benchmark, len(zooRegistry))
	copy(out, zooRegistry)
	return out
}

// ByName returns the named benchmark, searching the paper registry first
// and then the policy-zoo registry.
func ByName(name string) (Benchmark, error) {
	for _, b := range registry {
		if b.Name == name {
			return b, nil
		}
	}
	for _, b := range zooRegistry {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// MustByName is ByName but panics on unknown names.
func MustByName(name string) Benchmark {
	b, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return b
}

// Names returns all benchmark names in registry order.
func Names() []string {
	out := make([]string, len(registry))
	for i, b := range registry {
		out[i] = b.Name
	}
	return out
}

// SortedNames returns all benchmark names alphabetically (for stable
// diagnostics output).
func SortedNames() []string {
	out := Names()
	sort.Strings(out)
	return out
}
