package cacti

import (
	"testing"
	"testing/quick"

	"capsim/internal/tech"
)

var p18 = tech.ForFeature(tech.Micron018)

func cfg(kb, block, assoc int) Config {
	return Config{SizeBytes: kb * 1024, BlockBytes: block, Assoc: assoc}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		c  Config
		ok bool
	}{
		{cfg(8, 32, 2), true},
		{cfg(2, 32, 1), true},
		{Config{SizeBytes: 0, BlockBytes: 32, Assoc: 1}, false},
		{Config{SizeBytes: 8192, BlockBytes: 48, Assoc: 1}, false}, // non-power-of-2 block
		{Config{SizeBytes: 8192, BlockBytes: 32, Assoc: 0}, false},
		{Config{SizeBytes: 100, BlockBytes: 32, Assoc: 2}, false}, // not divisible
		{Config{SizeBytes: 8192, BlockBytes: 32, Assoc: 2, Subarrays: -1}, false},
	}
	for _, tc := range cases {
		err := tc.c.Validate()
		if tc.ok && err != nil {
			t.Errorf("%+v: unexpected error %v", tc.c, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%+v: expected error", tc.c)
		}
	}
}

func TestSets(t *testing.T) {
	if got := cfg(8, 32, 2).Sets(); got != 128 {
		t.Errorf("8KB/32B/2way sets = %d, want 128", got)
	}
	if got := cfg(16, 64, 4).Sets(); got != 64 {
		t.Errorf("16KB/64B/4way sets = %d, want 64", got)
	}
}

func TestAccessTimeInPlausibleRange(t *testing.T) {
	// An 8KB 2-way bank at 0.18 micron should access in roughly 1-2 ns
	// (calibration anchor: ~1.4 ns).
	total := AccessTime(cfg(8, 32, 2), p18).Total()
	if total < 0.8 || total > 2.0 {
		t.Errorf("8KB 2-way @0.18u access = %v ns, want ~1.4", total)
	}
}

func TestAccessTimeGrowsWithCapacity(t *testing.T) {
	// With a fixed subarray partitioning, bigger banks are slower.
	prev := 0.0
	for _, kb := range []int{2, 8, 32, 128} {
		c := cfg(kb, 32, 2)
		c.Subarrays = 1
		d := AccessTime(c, p18).Total()
		if d <= prev {
			t.Errorf("%dKB: access %v not greater than smaller bank %v", kb, d, prev)
		}
		prev = d
	}
}

func TestAccessTimeGrowsWithAssociativity(t *testing.T) {
	d2 := AccessTime(cfg(16, 32, 2), p18).Total()
	d8 := AccessTime(cfg(16, 32, 8), p18).Total()
	if d8 <= d2 {
		t.Errorf("8-way %v not slower than 2-way %v", d8, d2)
	}
}

func TestAccessTimeScalesWithFeature(t *testing.T) {
	c := cfg(8, 32, 2)
	d25 := AccessTime(c, tech.ForFeature(tech.Micron025)).Total()
	d12 := AccessTime(c, tech.ForFeature(tech.Micron012)).Total()
	if d12 >= d25 {
		t.Errorf("0.12u access %v not faster than 0.25u %v", d12, d25)
	}
}

func TestBreakdownComponentsPositive(t *testing.T) {
	b := AccessTime(cfg(8, 32, 2), p18)
	for name, v := range map[string]float64{
		"decoder": b.Decoder, "wordline": b.Wordline, "bitline": b.Bitline,
		"senseamp": b.SenseAmp, "tagcompare": b.TagCompare, "output": b.OutputDriver,
	} {
		if v <= 0 {
			t.Errorf("%s component %v not positive", name, v)
		}
	}
	sum := b.Decoder + b.Wordline + b.Bitline + b.SenseAmp + b.TagCompare + b.OutputDriver
	if got := b.Total(); got != sum {
		t.Errorf("Total %v != sum %v", got, sum)
	}
}

func TestDimensionsGrowWithCapacity(t *testing.T) {
	w8, h8 := Dimensions(cfg(8, 32, 2), p18)
	w32, h32 := Dimensions(cfg(32, 32, 2), p18)
	if w8 <= 0 || h8 <= 0 {
		t.Fatalf("non-positive dimensions %v x %v", w8, h8)
	}
	if w32 <= w8 || h32 <= h8 {
		t.Errorf("32KB (%vx%v) not larger than 8KB (%vx%v)", w32, h32, w8, h8)
	}
	// Area roughly quadruples for 4x the capacity (same overheads).
	ratio := (w32 * h32) / (w8 * h8)
	if ratio < 3 || ratio > 5 {
		t.Errorf("area ratio %v, want ~4", ratio)
	}
}

func TestCycleTimeExceedsAccessTime(t *testing.T) {
	c := cfg(8, 32, 2)
	if CycleTime(c, p18) <= AccessTime(c, p18).Total() {
		t.Error("cycle time should include precharge overhead beyond access time")
	}
}

func TestAutoSubarrayPartitioning(t *testing.T) {
	// Large banks auto-partition to keep bitlines short; the automatic
	// choice must never be slower than the monolithic layout by much.
	c := cfg(128, 32, 2)
	auto := AccessTime(c, p18).Total()
	c.Subarrays = 1
	mono := AccessTime(c, p18).Total()
	if auto > mono {
		t.Errorf("auto partitioning (%v) slower than monolithic (%v)", auto, mono)
	}
}

func TestAccessTimePositiveProperty(t *testing.T) {
	f := func(szExp, blkExp, assocExp uint8) bool {
		kb := 1 << (szExp % 8)       // 1..128 KB
		block := 16 << (blkExp % 3)  // 16/32/64
		assoc := 1 << (assocExp % 4) // 1..8
		c := cfg(kb, block, assoc)
		if c.Validate() != nil {
			return true // skip inconsistent combos
		}
		b := AccessTime(c, p18)
		return b.Total() > 0 && b.Total() < 50
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAccessTimePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on invalid config")
		}
	}()
	AccessTime(Config{SizeBytes: -1, BlockBytes: 32, Assoc: 1}, p18)
}
