// Package cacti provides an analytic SRAM/cache access-time model in the
// style of CACTI (Wilton & Jouppi, WRL TR 93/5), the timing tool the CAP
// paper uses to obtain individual cache-increment delays (Section 5.1). It
// is a deliberately simplified reimplementation: it keeps CACTI's structure
// (decoder, wordline, bitline, sense amplifier, tag compare, data output)
// and its scaling behaviour with capacity, block size, associativity and
// feature size, without the transistor-level curve fitting. Absolute values
// are anchored so an 8 KB two-way bank at 0.18 micron accesses in ~1.4 ns,
// matching the magnitude the paper's TPI plots imply (cycle time = L1 access
// / 3 ~ 0.47 ns, the floor of Figure 7a).
package cacti

import (
	"fmt"
	"math"

	"capsim/internal/memo"
	"capsim/internal/tech"
)

// Config describes a single cache bank (in the adaptive hierarchy, one
// "increment": a complete subcache containing both tags and data).
type Config struct {
	// SizeBytes is the bank's data capacity in bytes.
	SizeBytes int
	// BlockBytes is the cache block (line) size in bytes.
	BlockBytes int
	// Assoc is the set associativity of the bank.
	Assoc int
	// Subarrays is the number of data subarrays the bank is partitioned
	// into (CACTI's Ndwl*Ndbl). More subarrays shorten word and bit lines
	// at the cost of extra decode. 0 means "choose automatically".
	Subarrays int
	// TagBits is the number of tag bits compared per access; 0 selects a
	// typical 32-bit physical address default derived from the geometry.
	TagBits int
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0:
		return fmt.Errorf("cacti: size %d must be positive", c.SizeBytes)
	case c.BlockBytes <= 0 || c.BlockBytes&(c.BlockBytes-1) != 0:
		return fmt.Errorf("cacti: block size %d must be a positive power of two", c.BlockBytes)
	case c.Assoc <= 0:
		return fmt.Errorf("cacti: associativity %d must be positive", c.Assoc)
	case c.SizeBytes%(c.BlockBytes*c.Assoc) != 0:
		return fmt.Errorf("cacti: size %d not divisible by block*assoc %d", c.SizeBytes, c.BlockBytes*c.Assoc)
	case c.Subarrays < 0:
		return fmt.Errorf("cacti: negative subarray count %d", c.Subarrays)
	}
	if s := c.Sets(); s < 1 {
		return fmt.Errorf("cacti: configuration yields %d sets", s)
	}
	return nil
}

// Sets returns the number of sets in the bank.
func (c Config) Sets() int { return c.SizeBytes / (c.BlockBytes * c.Assoc) }

// tagBits returns the effective tag width.
func (c Config) tagBits() int {
	if c.TagBits > 0 {
		return c.TagBits
	}
	// 32-bit physical address minus index and offset bits.
	idx := int(math.Round(math.Log2(float64(c.Sets()))))
	off := int(math.Round(math.Log2(float64(c.BlockBytes))))
	tb := 32 - idx - off
	if tb < 8 {
		tb = 8
	}
	return tb
}

// subarrays returns the effective subarray count: the explicit one, or an
// automatic choice targeting subarrays of at most 128 rows (CACTI's
// partitioning heuristic keeps bitlines short as capacity grows).
func (c Config) subarrays() int {
	if c.Subarrays > 0 {
		return c.Subarrays
	}
	n := 1
	for c.Sets()/n > 128 {
		n *= 2
	}
	return n
}

// Breakdown itemizes the access-time components in nanoseconds.
type Breakdown struct {
	Decoder      float64
	Wordline     float64
	Bitline      float64
	SenseAmp     float64
	TagCompare   float64
	OutputDriver float64
}

// Total returns the bank access time in ns (the critical tag-side path plus
// output; CACTI takes the max of tag and data sides, which our simplified
// geometry keeps balanced, so a sum of the shared stages is used).
func (b Breakdown) Total() float64 {
	return b.Decoder + b.Wordline + b.Bitline + b.SenseAmp + b.TagCompare + b.OutputDriver
}

// modelKey memoizes the pure analytic functions of this package: both Config
// and tech.Params are flat scalar structs, so the pair is a comparable map
// key describing the computation completely.
type modelKey struct {
	c Config
	p tech.Params
}

// accessTimes and dimensions cache the model outputs. Machine constructors
// call these functions once per simulated configuration, and a parallel sweep
// constructs thousands of machines over a handful of distinct geometries; the
// memo collapses that to one evaluation per geometry. Validation panics
// happen in the callers *before* entering the memo (a panic inside the memo
// would poison the entry).
var (
	accessTimes memo.Memo[modelKey, Breakdown]
	dimensions  memo.Memo[modelKey, [2]float64]
)

// AccessTime computes the bank access-time breakdown for the given process.
// Device-limited stages scale linearly with feature size; wire-limited
// stages (word and bit lines) combine a device term with a constant wire-RC
// term derived from the physical array dimensions, so large banks stop
// improving with scaling — the effect that motivates the paper. Results are
// memoized: the model is pure in (Config, Params).
func AccessTime(c Config, p tech.Params) Breakdown {
	if err := c.Validate(); err != nil {
		panic(err)
	}
	return accessTimes.Get(modelKey{c, p}, func() Breakdown { return accessTime(c, p) })
}

func accessTime(c Config, p tech.Params) Breakdown {
	n := c.subarrays()
	rowsPerSub := float64(c.Sets()) / float64(n)
	if rowsPerSub < 1 {
		rowsPerSub = 1
	}
	bitsPerRow := float64(c.BlockBytes*8*c.Assoc) / float64(n)
	if bitsPerRow < 8 {
		bitsPerRow = 8
	}

	cell := p.BitCellSide()        // mm
	subWidth := bitsPerRow * cell  // mm
	subHeight := rowsPerSub * cell // mm
	tau := p.WireTauPerMM2()       // ns/mm^2
	fo4 := p.GateDelayFO4          // ns

	// Decoder: a predecode + final stage chain whose depth grows with
	// log2(rows), plus fanout to n subarrays.
	totalRows := rowsPerSub
	dec := fo4 * (1.0 + 0.22*math.Log2(totalRows) + 0.1*math.Log2(float64(n)+1))

	// Wordline: driver (device) + distributed RC across the subarray width.
	wl := 0.4*fo4 + 0.4*tau*subWidth*subWidth + 0.02*fo4*bitsPerRow/64.0

	// Bitline: cell drive is weak, so the device term grows with the rows
	// hanging off the line (diffusion load) plus the wire RC of the column.
	bl := 0.5*fo4 + 0.010*fo4*rowsPerSub + 0.4*tau*subHeight*subHeight

	// Sense amplifier: fixed device delay.
	sa := 0.6 * fo4

	// Tag compare: a tagBits-wide XOR-reduce tree.
	cmp := fo4 * (0.7 + 0.12*math.Log2(float64(c.tagBits())))

	// Output driver / way-select multiplexing: grows with associativity
	// (mux depth) and with the data path crossing the bank.
	out := fo4*(0.5+0.15*math.Log2(float64(c.Assoc)+1)) + 0.4*tau*subWidth*subWidth*0.25

	return Breakdown{
		Decoder:      dec,
		Wordline:     wl,
		Bitline:      bl,
		SenseAmp:     sa,
		TagCompare:   cmp,
		OutputDriver: out,
	}
}

// Dimensions returns the physical footprint of the bank in millimetres
// (width, height), including a fixed 40% overhead for decoders, sense
// amplifiers and routing. The adaptive-cache bus model uses the height to
// derive the global address/data bus length spanning a stack of increments.
func Dimensions(c Config, p tech.Params) (width, height float64) {
	if err := c.Validate(); err != nil {
		panic(err)
	}
	wh := dimensions.Get(modelKey{c, p}, func() [2]float64 {
		w, h := computeDimensions(c, p)
		return [2]float64{w, h}
	})
	return wh[0], wh[1]
}

func computeDimensions(c Config, p tech.Params) (width, height float64) {
	bits := float64(c.SizeBytes * 8)
	tagBits := float64(c.tagBits()+2) * float64(c.Sets()*c.Assoc) // +valid,+dirty
	cell := p.BitCellSide()
	area := (bits + tagBits) * cell * cell * 1.4
	// Aspect ratio ~2:1 (wider than tall) is typical for banked caches.
	height = math.Sqrt(area / 2.0)
	width = 2.0 * height
	return width, height
}

// CycleTime returns the minimum cycle time of the bank in ns: access time
// plus a precharge/recovery overhead fraction, CACTI's convention.
func CycleTime(c Config, p tech.Params) float64 {
	return AccessTime(c, p).Total() * 1.15
}
