// Package capsim is a Go reproduction of "Dynamic IPC/Clock Rate
// Optimization" — David H. Albonesi's Complexity-Adaptive Processors (CAPs),
// ISCA 1998.
//
// CAPs replace fixed superscalar control and cache structures with
// configurable ones built on the repeater (wire-buffer) methodologies of
// deep-submicron design, and pair them with a dynamic clock so that every
// configuration runs at its full clock-rate potential. The runtime can then
// trade IPC against clock rate to match the needs of the running
// application, minimizing TPI (time per instruction = cycle time / IPC).
//
// This package is the stable facade over the implementation packages:
//
//   - the adaptive two-level Dcache hierarchy (movable L1/L2 boundary,
//     exclusive caching) and the adaptive out-of-order instruction queue;
//   - the technology models behind them (Bakoglu repeater insertion,
//     CACTI-style cache timing, Palacharla wakeup/select timing);
//   - configuration-management policies: conventional fixed, the paper's
//     process-level scheme, and the Section 6 confidence-gated interval
//     predictor;
//   - the synthetic workload models standing in for SPEC95 + CMU + NAS;
//   - the experiment harness regenerating every figure of the paper's
//     evaluation.
//
// See README.md for a tour and DESIGN.md for the system inventory.
package capsim

import (
	"context"

	"capsim/internal/cache"
	"capsim/internal/core"
	"capsim/internal/experiments"
	"capsim/internal/metrics"
	"capsim/internal/tech"
	"capsim/internal/workload"
)

// Re-exported core types: the CAP control plane.
type (
	// AdaptiveStructure is a complexity-adaptive structure (CAS).
	AdaptiveStructure = core.AdaptiveStructure
	// StructureConfig is one selectable configuration of a CAS.
	StructureConfig = core.Config
	// Policy is a configuration-management heuristic.
	Policy = core.Policy
	// FixedPolicy models a conventional, design-time-frozen processor.
	FixedPolicy = core.FixedPolicy
	// ProcessLevelPolicy is the paper's per-application oracle scheme.
	ProcessLevelPolicy = core.ProcessLevelPolicy
	// IntervalPolicy is the Section 6 confidence-gated interval predictor.
	IntervalPolicy = core.IntervalPolicy
	// QueueMachine is the adaptive instruction-queue CAP.
	QueueMachine = core.QueueMachine
	// CacheMachine is the adaptive Dcache-hierarchy CAP.
	CacheMachine = core.CacheMachine
	// Sample is one interval measurement from the monitoring hardware.
	Sample = core.Sample
	// Benchmark is a synthetic application model.
	Benchmark = workload.Benchmark
	// CacheParams is the adaptive hierarchy's physical organization.
	CacheParams = cache.Params
	// ExperimentConfig holds experiment run budgets.
	ExperimentConfig = experiments.Config
	// ExperimentResult is a regenerated table/figure set.
	ExperimentResult = experiments.Result
	// Figure is a reproduced paper figure.
	Figure = metrics.Figure
	// Table is a reproduced paper table.
	Table = metrics.Table
)

// Feature sizes studied by the paper.
const (
	Micron025 = tech.Micron025
	Micron018 = tech.Micron018
	Micron012 = tech.Micron012
)

// NewQueueMachine builds an adaptive instruction-queue CAP for a benchmark.
// sizes lists the selectable entry counts (PaperQueueSizes for the paper's
// set), initial indexes into it, and penaltyCycles < 0 selects the default
// clock-switch penalty.
func NewQueueMachine(b Benchmark, seed uint64, sizes []int, initial, penaltyCycles int) (*QueueMachine, error) {
	return core.NewQueueMachine(b, seed, sizes, initial, penaltyCycles, tech.Micron018)
}

// NewCacheMachine builds an adaptive Dcache-hierarchy CAP for a benchmark
// with the L1/L2 boundary initially after `initial` increments.
func NewCacheMachine(b Benchmark, seed uint64, p CacheParams, initial, penaltyCycles int) (*CacheMachine, error) {
	return core.NewCacheMachine(b, seed, p, core.PaperMaxBoundary, initial, penaltyCycles)
}

// PaperQueueSizes returns the paper's queue configurations (16-128 entries).
func PaperQueueSizes() []int { return core.PaperQueueSizes() }

// PaperCacheParams returns the paper's 128 KB / 16x8KB 2-way hierarchy.
func PaperCacheParams() CacheParams { return cache.PaperParams() }

// RunQueue drives a queue CAP under a policy for `intervals` intervals of
// `n` instructions.
func RunQueue(q *QueueMachine, p Policy, intervals, n int64, keepSamples bool) core.RunResult {
	return core.RunQueue(q, p, intervals, n, keepSamples)
}

// RunCache drives a cache CAP under a policy for `intervals` intervals of
// `n` references.
func RunCache(c *CacheMachine, p Policy, intervals, n int64, keepSamples bool) core.CacheRunResult {
	return core.RunCache(c, p, intervals, n, keepSamples)
}

// Benchmarks returns all 22 application models in the paper's order.
func Benchmarks() []Benchmark { return workload.All() }

// BenchmarkByName looks up one application model.
func BenchmarkByName(name string) (Benchmark, error) { return workload.ByName(name) }

// Experiments lists the reproducible experiment IDs (fig1a ... fig13 and the
// ablations).
func Experiments() []string { return experiments.IDs() }

// RunExperiment regenerates one of the paper's tables/figures.
func RunExperiment(id string, cfg ExperimentConfig) (ExperimentResult, error) {
	return experiments.Run(id, cfg)
}

// RunExperimentCtx is RunExperiment under a context: cancelling ctx stops
// the experiment's sweep pools from claiming new simulation jobs and returns
// ctx's error. Safe for concurrent use; concurrent calls with equal
// configurations share the memoized profiling passes.
func RunExperimentCtx(ctx context.Context, id string, cfg ExperimentConfig) (ExperimentResult, error) {
	return experiments.RunCtx(ctx, id, cfg)
}

// DefaultExperimentConfig returns the standard (scaled-down) run budgets.
func DefaultExperimentConfig() ExperimentConfig { return experiments.DefaultConfig() }
